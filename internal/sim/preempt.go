package sim

import "fmt"

// Preemptible is a capacity-1 server whose low-priority occupant can be
// suspended by high-priority requests — the model for NAND program/erase
// suspend: a page read (tens of µs) preempts an in-flight program
// (hundreds of µs), which then resumes where it left off plus a resume
// overhead.
//
// Scheduling rules:
//   - high-priority requests run ahead of every queued low-priority one,
//     and suspend the current occupant if it is low-priority;
//   - a suspended occupant resumes (remaining time + ResumeOverhead) once
//     no high-priority work is pending;
//   - high-priority work never preempts high-priority work.
type Preemptible struct {
	eng  *Engine
	name string

	// ResumeOverhead is added to the remaining time of a suspended
	// operation each time it resumes.
	ResumeOverhead Time

	busy      bool
	curLowPri bool
	curEnd    *Event
	curOp     *pendingOp
	curDone   func()
	curFinish Time
	// curOverhead is the resume-overhead share at the front of the
	// current service interval: zero for a fresh operation,
	// ResumeOverhead for a resumed one. Suspending again nets out the
	// portion not yet consumed, so overhead never compounds across
	// repeated suspends (see suspendCurrent).
	curOverhead Time

	suspended    suspendedOp
	hasSuspended bool
	hiQueue      []*pendingOp
	loQueue      []*pendingOp
	freeOps      []*pendingOp

	preemptions uint64
	busyTime    Time
	curStart    Time
}

// pendingOp is one queued or in-service operation. Ops are recycled
// through the freeOps freelist and double as the completion-event
// argument, so a steady-state Use cycle allocates nothing.
//
//simlint:pooled
type pendingOp struct {
	p      *Preemptible
	d      Time
	done   func()
	lowPri bool
}

type suspendedOp struct {
	remaining Time
	done      func()
}

// NewPreemptible builds the resource.
func NewPreemptible(eng *Engine, name string, resumeOverhead Time) *Preemptible {
	if resumeOverhead < 0 {
		panic(fmt.Sprintf("sim: resume overhead %d", resumeOverhead))
	}
	return &Preemptible{eng: eng, name: name, ResumeOverhead: resumeOverhead}
}

// Preemptions returns how many suspends occurred.
func (p *Preemptible) Preemptions() uint64 { return p.preemptions }

// Busy reports whether an operation is executing right now.
func (p *Preemptible) Busy() bool { return p.busy }

//simlint:hotpath
func (p *Preemptible) getOp() *pendingOp {
	if n := len(p.freeOps); n > 0 {
		op := p.freeOps[n-1]
		p.freeOps[n-1] = nil
		p.freeOps = p.freeOps[:n-1]
		return op
	}
	//simlint:allow hotalloc pool growth: one-time allocation while the freelist warms up
	return &pendingOp{p: p}
}

//simlint:hotpath
//simlint:release
func (p *Preemptible) putOp(op *pendingOp) {
	op.done = nil
	//simlint:allow hotalloc amortized freelist growth; steady state reuses storage
	p.freeOps = append(p.freeOps, op)
}

// Use runs a preemptible (low-priority) operation of duration d, then done.
//
//simlint:hotpath
func (p *Preemptible) Use(d Time, done func()) {
	op := p.getOp()
	op.d, op.done, op.lowPri = d, done, true
	p.submit(op)
}

// UsePriority runs a high-priority operation of duration d, suspending the
// current low-priority occupant if necessary, then done.
//
//simlint:hotpath
func (p *Preemptible) UsePriority(d Time, done func()) {
	op := p.getOp()
	op.d, op.done, op.lowPri = d, done, false
	p.submit(op)
}

func (p *Preemptible) submit(op *pendingOp) {
	if !op.lowPri && p.busy && p.curLowPri {
		p.suspendCurrent()
	}
	if p.busy {
		if op.lowPri {
			//simlint:allow hotalloc amortized queue growth; steady state reuses storage
			p.loQueue = append(p.loQueue, op)
		} else {
			//simlint:allow hotalloc amortized queue growth; steady state reuses storage
			p.hiQueue = append(p.hiQueue, op)
		}
		return
	}
	p.start(op.d, op.done, op.lowPri, 0)
	p.putOp(op)
}

// suspendCurrent captures the occupant's remaining *work* and cancels its
// completion event. If the occupant was itself a resumed operation, part
// of its service interval is resume overhead rather than work; whatever
// overhead has not elapsed yet is netted out, because the next resume
// charges a fresh ResumeOverhead. Carrying it forward instead (the
// pre-fix behaviour) compounded one extra overhead per suspend, inflating
// program latency under read-heavy interference.
func (p *Preemptible) suspendCurrent() {
	now := p.eng.Now()
	remaining := p.curFinish - now
	if remaining < 0 {
		remaining = 0
	}
	if unconsumed := p.curOverhead - (now - p.curStart); unconsumed > 0 {
		remaining -= unconsumed
		if remaining < 0 {
			remaining = 0
		}
	}
	p.busyTime += now - p.curStart
	p.eng.Cancel(p.curEnd)
	if p.curOp != nil {
		p.putOp(p.curOp)
		p.curOp = nil
	}
	p.suspended = suspendedOp{remaining: remaining, done: p.curDone}
	p.hasSuspended = true
	p.preemptions++
	p.busy = false
	p.curEnd = nil
	p.curDone = nil
}

func (p *Preemptible) start(d Time, done func(), lowPri bool, overhead Time) {
	p.busy = true
	p.curLowPri = lowPri
	p.curDone = done
	p.curStart = p.eng.Now()
	p.curFinish = p.eng.Now() + d
	p.curOverhead = overhead
	op := p.getOp()
	op.done = done
	p.curOp = op
	p.curEnd = p.eng.scheduleArg(d, finishPreemptible, op)
}

// finishPreemptible is the completion callback of the in-service
// operation (package function: scheduling it allocates no closure).
//
//simlint:hotpath
func finishPreemptible(arg any) {
	op := arg.(*pendingOp)
	p := op.p
	done := op.done
	p.curOp = nil
	p.putOp(op)
	p.busy = false
	p.curEnd = nil
	p.curDone = nil
	p.busyTime += p.eng.Now() - p.curStart
	if done != nil {
		done()
	}
	p.dispatch()
}

// dispatch picks the next work item: high-priority queue, then the
// suspended operation, then the low-priority queue.
func (p *Preemptible) dispatch() {
	if p.busy {
		return
	}
	if len(p.hiQueue) > 0 {
		op := p.hiQueue[0]
		copy(p.hiQueue, p.hiQueue[1:])
		p.hiQueue = p.hiQueue[:len(p.hiQueue)-1]
		p.start(op.d, op.done, false, 0)
		p.putOp(op)
		return
	}
	if p.hasSuspended {
		s := p.suspended
		p.suspended = suspendedOp{}
		p.hasSuspended = false
		p.start(s.remaining+p.ResumeOverhead, s.done, true, p.ResumeOverhead)
		return
	}
	if len(p.loQueue) > 0 {
		op := p.loQueue[0]
		copy(p.loQueue, p.loQueue[1:])
		p.loQueue = p.loQueue[:len(p.loQueue)-1]
		p.start(op.d, op.done, true, 0)
		p.putOp(op)
	}
}

// Utilization returns the busy fraction since simulation start.
func (p *Preemptible) Utilization() float64 {
	now := p.eng.Now()
	if now == 0 {
		return 0
	}
	total := p.busyTime
	if p.busy {
		total += now - p.curStart
	}
	return float64(total) / float64(now)
}
