// Package units is the single home for byte-size, bandwidth, clock and
// energy conversions in the reproduction. Every scale factor the
// performance model needs (1000, 1024, 1e6, 1e9, 1e-12, …) lives here,
// behind a named type or a named constant, so the rest of the tree never
// multiplies a measurement by a bare literal — the `unitconv` analyzer in
// internal/lint/checks enforces that at `make tier3` time.
//
// Conventions, chosen to match the paper and the storage industry:
//
//   - Capacities are binary: a page is 16 KiB = 16384 bytes, device
//     geometry multiplies out in powers of two (KiB, MiB, GiB, TiB).
//   - Bandwidths are decimal: MB/s is 1e6 bytes per second, GB/s is 1e9
//     bytes per second (ONFI channel ratings, PCIe lane rates and NVMe
//     spec sheets all quote decimal units). MBps→GBps is therefore a
//     division by 1000, never by 1024.
//   - Simulated time is sim.Time nanoseconds; because GB/s ≡ bytes/ns,
//     transfer-time math is bytes ÷ GBps with no scale factor, and that
//     identity is wrapped once here instead of re-derived at call sites.
//
// The arithmetic inside each helper deliberately mirrors the expressions
// it replaced (same operations in the same order), so adopting the typed
// layer is bit-for-bit neutral on simulator output.
package units

import (
	"fmt"

	"repro/internal/sim"
)

// Bytes is an exact byte count: a capacity, a footprint or a transfer size.
type Bytes int64

// Binary capacity units (powers of two), for geometry and footprints.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
	TiB Bytes = 1 << 40
)

// Decimal size units (powers of ten), for traffic volumes in reports —
// matching the decimal bandwidth units they are divided by.
const (
	KB Bytes = 1e3
	MB Bytes = 1e6
	GB Bytes = 1e9
	TB Bytes = 1e12
)

// Named scale constants for call sites where a full type would obscure
// rather than clarify (e.g. integer cycle math). Prefer the typed
// helpers; reach for these only when preserving exact integer or
// floating-point expression shape matters.
const (
	NsPerSec   = 1e9 // nanoseconds per second
	NsPerMs    = 1e6 // nanoseconds per millisecond
	NsPerUs    = 1e3 // nanoseconds per microsecond
	HzPerMHz   = 1e6 // hertz per megahertz
	PJPerJ     = 1e12
	MBPerGB    = 1e3 // decimal: 1000 MB per GB
	BytesPerMB = 1e6
	BytesPerGB = 1e9

	// FLOPSPerGFLOPS and FLOPSPerTFLOPS scale the compute-throughput
	// ratings (GPU TFLOPS, CPU GFLOPS) to scalar operations per second.
	FLOPSPerGFLOPS = 1e9
	FLOPSPerTFLOPS = 1e12

	// NsPerByteAtMBps is the nanoseconds to move one byte at 1 MB/s
	// (1e9 ns/s ÷ 1e6 bytes/MB) — the factor for integer-exact MB/s
	// transfer-time math.
	NsPerByteAtMBps = 1e3
)

// Int64 returns the raw count for interfacing with untyped APIs.
func (b Bytes) Int64() int64 { return int64(b) }

// KiBf, MiBf and GiBf return the size in binary units as floats, for
// human-facing report columns.
func (b Bytes) KiBf() float64 { return float64(b) / float64(KiB) }
func (b Bytes) MiBf() float64 { return float64(b) / float64(MiB) }
func (b Bytes) GiBf() float64 { return float64(b) / float64(GiB) }

// KBf, MBf and GBf return the size in decimal units as floats — the
// convention for traffic volumes (they divide evenly against MB/s and
// GB/s bandwidth figures).
func (b Bytes) KBf() float64 { return float64(b) / float64(KB) }
func (b Bytes) MBf() float64 { return float64(b) / float64(MB) }
func (b Bytes) GBf() float64 { return float64(b) / float64(GB) }
func (b Bytes) TBf() float64 { return float64(b) / float64(TB) }

// String renders the count with an adaptive binary unit.
func (b Bytes) String() string {
	switch {
	case b >= GiB:
		return fmt.Sprintf("%.2fGiB", b.GiBf())
	case b >= MiB:
		return fmt.Sprintf("%.2fMiB", b.MiBf())
	case b >= KiB:
		return fmt.Sprintf("%.2fKiB", b.KiBf())
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// Bps is a bandwidth in bytes per second.
type Bps float64

// MBps is a bandwidth in decimal megabytes (1e6 bytes) per second — the
// unit ONFI channel buses are rated in.
type MBps float64

// GBps is a bandwidth in decimal gigabytes (1e9 bytes) per second — the
// unit PCIe links and interconnects are rated in. Numerically a GBps
// value is also bytes per nanosecond, which is what makes it the natural
// unit for sim.Time math.
type GBps float64

// Conversions between the bandwidth scales (decimal throughout).

// GBps converts channel-bus MB/s to GB/s: a division by 1000.
func (m MBps) GBps() GBps { return GBps(m / MBPerGB) }

// MBps converts GB/s to MB/s.
func (g GBps) MBps() MBps { return MBps(g * MBPerGB) }

// Bps converts to raw bytes per second.
func (m MBps) Bps() Bps { return Bps(m * BytesPerMB) }
func (g GBps) Bps() Bps { return Bps(g * BytesPerGB) }

// Scale multiplies a rate by a dimensionless factor (lane counts, plane
// counts, worker counts).
func (r Bps) Scale(k float64) Bps   { return Bps(float64(r) * k) }
func (m MBps) Scale(k float64) MBps { return MBps(float64(m) * k) }
func (g GBps) Scale(k float64) GBps { return GBps(float64(g) * k) }

// RateBps derives a bandwidth from an amount moved in a duration.
func RateBps(b Bytes, t sim.Time) Bps {
	return Bps(float64(b) / t.Seconds())
}

// RateMBps derives a MB/s bandwidth from an amount moved in a duration,
// using the bytes-per-microsecond ≡ MB/s identity.
func RateMBps(b Bytes, t sim.Time) MBps {
	return MBps(float64(b) / (float64(t) / NsPerUs))
}

// TransferTime is the wire/media occupancy to move b bytes at the rate.
// GB/s ≡ bytes/ns, so the GBps form is a single division.
func (g GBps) TransferTime(b Bytes) sim.Time { return g.TransferTimeF(float64(b)) }
func (m MBps) TransferTime(b Bytes) sim.Time { return m.TransferTimeF(float64(b)) }
func (r Bps) TransferTime(b Bytes) sim.Time  { return r.TransferTimeF(float64(b)) }

// TransferTimeF is TransferTime for fractional byte counts — extrapolated
// window totals and per-plane shares are naturally non-integral.
func (g GBps) TransferTimeF(bytes float64) sim.Time {
	return sim.Time(bytes / float64(g))
}

func (m MBps) TransferTimeF(bytes float64) sim.Time {
	return sim.Time(bytes / (float64(m) * BytesPerMB) * NsPerSec)
}

func (r Bps) TransferTimeF(bytes float64) sim.Time {
	return sim.Time(bytes / float64(r) * NsPerSec)
}

// TransferTimeInt is the integer-exact bus occupancy for n bytes at a
// whole-MB/s rate, truncating: ns = n × 1000 ÷ MB/s. The NAND channel
// model is specified with this integer math; keep it off the float path.
func (m MBps) TransferTimeInt(n int64) sim.Time {
	return sim.Time(n * int64(NsPerByteAtMBps) / int64(m))
}

// Duration constructors: the sanctioned ways to build a sim.Time from a
// raw number (the `simtime` analyzer flags bare sim.Time(x) conversions).

// Nanos builds a sim.Time from floating-point nanoseconds, truncating
// toward zero exactly like the raw conversion it replaces.
func Nanos(ns float64) sim.Time { return sim.Time(ns) }

// Micros builds a sim.Time from microseconds.
func Micros(us float64) sim.Time { return sim.Time(us * NsPerUs) }

// Millis builds a sim.Time from milliseconds.
func Millis(ms float64) sim.Time { return sim.Time(ms * NsPerMs) }

// Seconds builds a sim.Time from seconds.
func Seconds(s float64) sim.Time { return sim.Time(s * NsPerSec) }

// Picojoules is an energy in pJ, the unit the per-op cost tables use.
type Picojoules float64

// Joules converts to SI joules.
func (p Picojoules) Joules() float64 { return float64(p) / PJPerJ }

// CyclesAtMHz is the integer-exact duration of n cycles at a clock rate:
// ns = cycles × 1000 / MHz. It preserves the truncating integer division
// the ODP timing model is specified with.
func CyclesAtMHz(cycles int64, clockMHz int) sim.Time {
	return sim.Time(cycles * int64(NsPerUs) / int64(clockMHz))
}
