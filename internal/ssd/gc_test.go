package ssd

import (
	"testing"

	"repro/internal/sim"
)

// eraseSnapshot captures every block's P/E count.
func eraseSnapshot(f *FTL) []int {
	g := f.Geometry()
	counts := make([]int, 0, g.BlocksTotal())
	for p := 0; p < g.Planes(); p++ {
		for b := 0; b < g.BlocksPerPlane; b++ {
			counts = append(counts, f.BlockErases(p, b))
		}
	}
	return counts
}

// TestGCMigratesOnlyLivePages instruments the commit hook to watch every
// GC relocation: each one must move a page that is currently mapped, and
// the relocation count the device reports must match what the hook saw.
func TestGCMigratesOnlyLivePages(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	lpas := d.Config().LogicalPages()

	var hookRelocations uint64
	d.SetCommitHook(func(lpa, oldLin, newLin int64, gc bool) {
		if !gc {
			return
		}
		hookRelocations++
		if oldLin < 0 {
			t.Errorf("GC relocated lpa %d that had no prior mapping", lpa)
		}
		if newLin == oldLin {
			t.Errorf("GC relocated lpa %d onto itself (ppa %d)", lpa, oldLin)
		}
	})

	for lpa := int64(0); lpa < lpas; lpa++ {
		d.Write(lpa, nil)
	}
	runDrained(t, e, d)
	for round := 0; round < 8; round++ {
		for lpa := int64(0); lpa < lpas; lpa += 3 {
			d.Write(lpa, nil)
		}
		runDrained(t, e, d)
	}

	s := d.Stats()
	if s.GCRelocations == 0 {
		t.Fatal("churn produced no relocations; test exercises nothing")
	}
	if hookRelocations != s.GCRelocations {
		t.Fatalf("hook saw %d relocations, device reports %d", hookRelocations, s.GCRelocations)
	}
	if s.GCRelocations != d.FTL().GCProgrammed() {
		t.Fatalf("device relocations %d, FTL GC programs %d", s.GCRelocations, d.FTL().GCProgrammed())
	}
}

// TestGCEraseCountsMonotone snapshots every block's P/E count between
// overwrite rounds: counts must never decrease, their total must equal the
// device's erase tally, and wear must stay level enough that the
// least-erased-first block selection is actually operating.
func TestGCEraseCountsMonotone(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	lpas := d.Config().LogicalPages()

	for lpa := int64(0); lpa < lpas; lpa++ {
		d.Write(lpa, nil)
	}
	runDrained(t, e, d)

	prev := eraseSnapshot(d.FTL())
	for round := 0; round < 12; round++ {
		for lpa := int64(0); lpa < lpas; lpa += 2 {
			d.Write(lpa, nil)
		}
		runDrained(t, e, d)
		cur := eraseSnapshot(d.FTL())
		for b := range cur {
			if cur[b] < prev[b] {
				t.Fatalf("round %d: block %d erase count went %d -> %d", round, b, prev[b], cur[b])
			}
		}
		prev = cur
	}

	var total uint64
	for _, c := range prev {
		total += uint64(c)
	}
	if total != d.Stats().GCErases {
		t.Fatalf("per-block erase counts sum to %d, device erased %d blocks", total, d.Stats().GCErases)
	}
	if d.Stats().GCErases == 0 {
		t.Fatal("no erases; churn insufficient")
	}
	g := d.Geometry()
	for p := 0; p < g.Planes(); p++ {
		if min, max := d.FTL().WearSpread(p); max-min > 3 {
			t.Errorf("plane %d wear spread [%d, %d]: least-erased-first selection not levelling", p, min, max)
		}
	}
}

// TestGCNoLivePageLoss checks the end state of heavy churn, with hot/cold
// stream separation both off and on: every logical page written is still
// mapped, the translation map is internally consistent, and overall write
// amplification reflects the relocations that happened.
func TestGCNoLivePageLoss(t *testing.T) {
	for _, sep := range []bool{false, true} {
		name := "mixed-streams"
		if sep {
			name = "hot-cold-separated"
		}
		t.Run(name, func(t *testing.T) {
			cfg := smallConfig()
			cfg.HotColdSeparation = sep
			e := sim.NewEngine()
			d := NewDevice(e, cfg)
			lpas := cfg.LogicalPages()

			for lpa := int64(0); lpa < lpas; lpa++ {
				d.Write(lpa, nil)
			}
			runDrained(t, e, d)
			for round := 0; round < 10; round++ {
				// Rotate the stale stripe so every block eventually mixes
				// valid and stale pages.
				for lpa := int64(round % 5); lpa < lpas; lpa += 5 {
					d.Write(lpa, nil)
				}
				runDrained(t, e, d)
			}

			for lpa := int64(0); lpa < lpas; lpa++ {
				if _, ok := d.FTL().Lookup(lpa); !ok {
					t.Fatalf("live page %d lost after GC churn", lpa)
				}
			}
			s := d.Stats()
			if s.GCErases == 0 || s.GCRelocations == 0 {
				t.Fatalf("churn did not exercise GC (erases=%d relocations=%d)", s.GCErases, s.GCRelocations)
			}
			wantWAF := float64(d.FTL().HostProgrammed()+d.FTL().GCProgrammed()) / float64(d.FTL().HostProgrammed())
			if diff := s.WAF - wantWAF; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("WAF %v, programs imply %v", s.WAF, wantWAF)
			}
		})
	}
}
