package sim

import (
	"math/rand"
	"testing"
)

// --- Bugfix regressions -------------------------------------------------

// TestEngineCancelAfterFireKeepsFired pins the Cancel/fired state machine:
// cancelling an event that already executed must be a no-op, not
// retroactively mark it cancelled. The pre-fix code set canceled = true
// unconditionally, so callers racing a completion (plane suspend logic,
// timeout cleanup) saw Canceled() == true for work that actually ran.
// The handle stays valid here because nothing is scheduled after the
// fire, so the pool has not reused the struct.
func TestEngineCancelAfterFireKeepsFired(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(10, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("event did not run")
	}
	if !ev.Fired() || ev.Canceled() {
		t.Fatalf("after fire: Fired=%v Canceled=%v, want true/false", ev.Fired(), ev.Canceled())
	}
	e.Cancel(ev)
	if ev.Canceled() {
		t.Fatal("Cancel marked an already-fired event as cancelled")
	}
	if !ev.Fired() {
		t.Fatal("Cancel cleared the fired state")
	}
}

// TestPreemptibleSuspendDuringResumeOverhead pins the resume-overhead
// accounting fix: suspending a resumed operation before its overhead is
// fully consumed must not carry the unconsumed overhead into the captured
// remaining work, because the next resume charges a fresh ResumeOverhead.
//
// Timeline (overhead 10): prog(100) starts at 0; hi(20) at 50 suspends it
// with 50 of work left; hi runs 50→70; prog resumes at 70 as 10 overhead
// + 50 work; hi(20) at 75 suspends it again, 5 ticks into the overhead.
// Remaining work is still 50 (5 of overhead consumed, 0 work done), so
// after hi runs 75→95 the final resume is 10+50 → prog ends at 155. The
// pre-fix code captured 55 (work plus the 5 unconsumed overhead ticks)
// and ended at 160, compounding one extra overhead per suspend.
func TestPreemptibleSuspendDuringResumeOverhead(t *testing.T) {
	e := NewEngine()
	p := NewPreemptible(e, "plane", 10)
	var progEnd Time = -1
	p.Use(100, func() { progEnd = e.Now() })
	e.Schedule(50, func() { p.UsePriority(20, nil) })
	e.Schedule(75, func() { p.UsePriority(20, nil) })
	e.Run()
	if progEnd != 155 {
		t.Fatalf("program end = %d, want 155 (160 means unconsumed resume overhead compounded)", progEnd)
	}
	if p.Preemptions() != 2 {
		t.Fatalf("preemptions = %d, want 2", p.Preemptions())
	}
}

// TestCounterAddToZeroFires pins the Add completion semantics: a delta
// that brings the count to zero fires the callback exactly like Done and
// Arm. The pre-fix Add only adjusted the count, so a fork-join cancelling
// its last outstanding branches via Add(-k) deadlocked silently.
func TestCounterAddToZeroFires(t *testing.T) {
	fired := false
	c := NewCounter(3, func() { fired = true })
	c.Done()
	c.Add(-2) // cancel the two remaining branches
	if !fired {
		t.Fatal("Add reaching zero did not fire the callback")
	}
	if c.Remaining() != 0 {
		t.Fatalf("remaining = %d", c.Remaining())
	}
}

// TestCounterAddBelowZeroPanics pins the over-completion check: driving
// the count negative via Add is the same bug Done catches, and must panic
// rather than corrupt the join.
func TestCounterAddBelowZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add below zero did not panic")
		}
	}()
	NewCounter(1, nil).Add(-2)
}

// --- Allocation pins ----------------------------------------------------

// TestScheduleSteadyStateZeroAllocs pins the pooled Schedule path: once
// the freelist and queue storage are warm, a Schedule+Run cycle performs
// zero heap allocations — the Event comes from the per-engine freelist
// and a capture-free callback is a static func value.
func TestScheduleSteadyStateZeroAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.Schedule(Time(i%7), fn)
	}
	e.Run()
	per := testing.AllocsPerRun(1000, func() {
		e.Schedule(1, fn)
		e.Run()
	})
	//simlint:allow floateq AllocsPerRun returns a whole count; the pin is exactly zero
	if per != 0 {
		t.Fatalf("Schedule+Run allocates %v in steady state, want 0 (event pool broken)", per)
	}
}

// TestScheduleBatchSteadyStateZeroAllocs pins the batch path the same
// way: the caller owns the Timed slice, so a warm batch insert allocates
// nothing beyond it.
func TestScheduleBatchSteadyStateZeroAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	items := make([]Timed, 16)
	for i := range items {
		items[i] = Timed{Delay: Time(i % 5), Fn: fn}
	}
	e.ScheduleBatch(items)
	e.Run()
	per := testing.AllocsPerRun(1000, func() {
		e.ScheduleBatch(items)
		e.Run()
	})
	//simlint:allow floateq AllocsPerRun returns a whole count; the pin is exactly zero
	if per != 0 {
		t.Fatalf("ScheduleBatch+Run allocates %v in steady state, want 0", per)
	}
}

// --- ScheduleBatch contract ---------------------------------------------

// TestScheduleBatchMatchesIndividual proves the batch API is purely a
// performance hint: for the same (delay, fn) sequence — ties included —
// batch insertion fires callbacks in exactly the order a loop of
// Schedule calls would, on both the bulk-heapify path (large batch into
// an empty queue) and the incremental path (small batch into a populated
// queue).
func TestScheduleBatchMatchesIndividual(t *testing.T) {
	delays := []Time{30, 10, 10, 0, 20, 10, 5, 5, 40, 0, 25, 30, 15, 7, 7, 7}
	run := func(batch bool, preload int) []int {
		e := NewEngine()
		var got []int
		// Background events exercise merging into a non-empty queue.
		for i := 0; i < preload; i++ {
			i := i
			e.Schedule(Time(i*3+1), func() { got = append(got, 1000+i) })
		}
		items := make([]Timed, len(delays))
		for i, d := range delays {
			i := i
			items[i] = Timed{Delay: d, Fn: func() { got = append(got, i) }}
		}
		if batch {
			e.ScheduleBatch(items)
		} else {
			for _, it := range items {
				e.Schedule(it.Delay, it.Fn)
			}
		}
		e.Run()
		return got
	}
	for _, preload := range []int{0, 100} {
		a := run(false, preload)
		b := run(true, preload)
		if len(a) != len(b) {
			t.Fatalf("preload=%d: fired %d vs %d events", preload, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("preload=%d: firing order diverges at %d: individual %v, batch %v", preload, i, a, b)
			}
		}
	}
}

func TestScheduleBatchNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative batch delay did not panic")
		}
	}()
	NewEngine().ScheduleBatch([]Timed{{Delay: 5}, {Delay: -1}})
}

// --- Pool-reuse determinism ---------------------------------------------

// TestEventPoolReuseDeterminism runs one pseudo-random schedule/cancel
// workload on a cold engine and on an engine whose freelists were churned
// by unrelated prior work, and requires identical firing sequences and
// identical relative firing times. Event identity must live entirely in
// the (time, seq) ordering key — never in struct addresses — or pooled
// reuse would silently reorder simulations.
func TestEventPoolReuseDeterminism(t *testing.T) {
	workload := func(e *Engine) (ids []int, times []Time) {
		start := e.Now()
		rng := rand.New(rand.NewSource(7))
		var handles []*Event
		for i := 0; i < 400; i++ {
			i := i
			ev := e.Schedule(Time(rng.Intn(50)), func() {
				ids = append(ids, i)
				times = append(times, e.Now()-start)
			})
			if rng.Intn(4) == 0 {
				handles = append(handles, ev)
			}
			// Cancel a random earlier retained handle now and then, while
			// it is still pending (nothing has fired yet).
			if len(handles) > 0 && rng.Intn(8) == 0 {
				k := rng.Intn(len(handles))
				e.Cancel(handles[k])
				handles = append(handles[:k], handles[k+1:]...)
			}
		}
		e.Run()
		return ids, times
	}

	cold := NewEngine()
	idsA, timesA := workload(cold)

	warm := NewEngine()
	for i := 0; i < 500; i++ {
		warm.Schedule(Time(i%13), func() {})
	}
	warm.Run() // populate the event freelist with recycled structs
	idsB, timesB := workload(warm)

	if len(idsA) != len(idsB) {
		t.Fatalf("cold fired %d events, warm %d", len(idsA), len(idsB))
	}
	for i := range idsA {
		if idsA[i] != idsB[i] || timesA[i] != timesB[i] {
			t.Fatalf("divergence at %d: cold (%d@%d) vs warm (%d@%d)",
				i, idsA[i], timesA[i], idsB[i], timesB[i])
		}
	}
}
