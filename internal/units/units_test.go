package units

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestCapacityConstants(t *testing.T) {
	if KiB != 1024 || MiB != 1024*KiB || GiB != 1024*MiB || TiB != 1024*GiB {
		t.Fatalf("binary constants wrong: %d %d %d %d", KiB, MiB, GiB, TiB)
	}
	if KB != 1000 || MB != 1000*KB || GB != 1000*MB || TB != 1000*GB {
		t.Fatalf("decimal constants wrong: %d %d %d %d", KB, MB, GB, TB)
	}
	// The 1000-vs-1024 split the package exists to police: a 16 KiB page
	// is 16384 bytes, not 16000.
	if page := 16 * KiB; page.Int64() != 16384 {
		t.Fatalf("16 KiB = %d", page.Int64())
	}
}

func TestBandwidthConversions(t *testing.T) {
	// Bandwidths are decimal: 9600 MB/s is 9.6 GB/s, not 9.375.
	//simlint:allow floateq conversion factors are specified exact
	if got := MBps(9600).GBps(); got != 9.6 {
		t.Fatalf("9600 MB/s = %v GB/s, want 9.6", got)
	}
	//simlint:allow floateq conversion factors are specified exact
	if got := GBps(9.6).MBps(); got != 9600 {
		t.Fatalf("9.6 GB/s = %v MB/s, want 9600", got)
	}
	//simlint:allow floateq conversion factors are specified exact
	if got := MBps(1200).Bps(); got != 1.2e9 {
		t.Fatalf("1200 MB/s = %v B/s", got)
	}
	//simlint:allow floateq conversion factors are specified exact
	if got := GBps(4).Bps(); got != 4e9 {
		t.Fatalf("4 GB/s = %v B/s", got)
	}
	//simlint:allow floateq conversion factors are specified exact
	if got := GBps(2).Scale(3); got != 6 {
		t.Fatalf("scale: %v", got)
	}
}

func TestTransferTime(t *testing.T) {
	// GB/s ≡ bytes/ns: 4e9 bytes at 4 GB/s is exactly one second.
	if got := GBps(4).TransferTime(4 * GB); got != sim.Second {
		t.Fatalf("4 GB at 4 GB/s = %v, want 1s", got)
	}
	// The MBps path must agree with the GBps path on round numbers.
	if got := MBps(4000).TransferTime(4 * GB); got != sim.Second {
		t.Fatalf("4 GB at 4000 MB/s = %v, want 1s", got)
	}
	if got := Bps(4e9).TransferTime(4 * GB); got != sim.Second {
		t.Fatalf("4 GB at 4e9 B/s = %v, want 1s", got)
	}
	// Truncation matches the raw conversions the helpers replaced:
	// 10 bytes at 3 GB/s is 3.33 ns → 3 ns.
	if got := GBps(3).TransferTime(10); got != 3 {
		t.Fatalf("truncation: %v", got)
	}
	// Fractional byte counts (extrapolated windows) keep their fraction.
	if got := GBps(1).TransferTimeF(2.5); got != 2 {
		t.Fatalf("fractional: %v", got)
	}
}

func TestRates(t *testing.T) {
	// A 16 KiB page sensed in 50 µs is 16384/50 bytes/µs ≡ 327.68 MB/s.
	page := 16 * KiB
	tR := 50 * sim.Microsecond
	if got := RateMBps(page, tR); math.Abs(float64(got)-327.68) > 1e-9 {
		t.Fatalf("page rate %v MB/s, want 327.68", got)
	}
	if got := RateBps(page, tR); math.Abs(float64(got)-327.68e6) > 1e-3 {
		t.Fatalf("page rate %v B/s, want 327.68e6", got)
	}
	// Rate → transfer time round-trips the duration.
	if got := RateBps(page, tR).TransferTime(page); got != tR {
		t.Fatalf("round trip %v, want %v", got, tR)
	}
}

func TestDurationConstructors(t *testing.T) {
	if Nanos(1500) != 1500 {
		t.Fatal("Nanos")
	}
	if Micros(2) != 2*sim.Microsecond {
		t.Fatal("Micros")
	}
	if Millis(3) != 3*sim.Millisecond {
		t.Fatal("Millis")
	}
	if Seconds(1) != sim.Second {
		t.Fatal("Seconds")
	}
	// Truncation toward zero, exactly like sim.Time(x).
	if Nanos(2.9) != 2 {
		t.Fatal("Nanos truncation")
	}
}

func TestEnergy(t *testing.T) {
	//simlint:allow floateq conversion factors are specified exact
	if got := Picojoules(1e12).Joules(); got != 1 {
		t.Fatalf("1e12 pJ = %v J", got)
	}
	//simlint:allow floateq conversion factors are specified exact
	if got := Picojoules(250).Joules(); got != 250e-12 {
		t.Fatalf("250 pJ = %v J", got)
	}
}

func TestCyclesAtMHz(t *testing.T) {
	// 400 cycles at 400 MHz is exactly 1000 ns.
	if got := CyclesAtMHz(400, 400); got != sim.Microsecond {
		t.Fatalf("400cyc@400MHz = %v", got)
	}
	// Integer truncation is part of the contract (matches the ODP model).
	if got := CyclesAtMHz(1, 400); got != 2 {
		t.Fatalf("1cyc@400MHz = %v, want 2 (2.5 truncated)", got)
	}
}

func TestByteFormatting(t *testing.T) {
	if s := (16 * KiB).String(); s != "16.00KiB" {
		t.Fatalf("String: %q", s)
	}
	if s := Bytes(512).String(); s != "512B" {
		t.Fatalf("String: %q", s)
	}
	//simlint:allow floateq conversion factors are specified exact
	if got := (2 * GiB).GiBf(); got != 2 {
		t.Fatalf("GiBf: %v", got)
	}
	//simlint:allow floateq conversion factors are specified exact
	if got := (3 * GB).GBf(); got != 3 {
		t.Fatalf("GBf: %v", got)
	}
}
