package core

import (
	"testing"

	"repro/internal/dnn"
	"repro/internal/nand"
	"repro/internal/optim"
)

func TestEnduranceSLCBeatsTLC(t *testing.T) {
	cfg := testConfig(dnn.GPT2XL())
	tlc, err := RunEndurance(cfg, nand.TLC, 3)
	if err != nil {
		t.Fatal(err)
	}
	slc, err := RunEndurance(cfg, nand.SLC, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !tlc.Fits || !slc.Fits {
		t.Fatalf("GPT-2-XL state (%d B) should fit both modes", tlc.StateBytes)
	}
	// SLC has ~33× the P/E budget of TLC but 1/2 the pages per block in
	// this model; lifetime must still be far longer.
	if slc.LifetimeSteps <= 5*tlc.LifetimeSteps {
		t.Fatalf("SLC lifetime %.3g steps not >> TLC %.3g", slc.LifetimeSteps, tlc.LifetimeSteps)
	}
	if tlc.LifetimeSteps <= 0 || tlc.LifetimeDays <= 0 {
		t.Fatalf("degenerate TLC lifetime: %+v", tlc)
	}
}

func TestEnduranceWAFNearOneForSequentialUpdates(t *testing.T) {
	cfg := testConfig(dnn.GPT2XL())
	rep, err := RunEndurance(cfg, nand.TLC, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Dense optimizer updates sweep the state sequentially, invalidating
	// whole blocks: write amplification should be mild.
	if rep.MeasuredWAF < 1 || rep.MeasuredWAF > 1.6 {
		t.Fatalf("sequential-update WAF = %v, want ~1", rep.MeasuredWAF)
	}
	if rep.ProgramBytesPerStep < float64(rep.StateBytes) {
		t.Fatal("program bytes cannot be below state bytes")
	}
}

// TestEnduranceQ8ScaleOverhead pins the Q8State footprint fix: block-wise
// quantization stores one float32 scale per 256-element block per state
// tensor (8/256 B/param for Adam's two moments), so the endurance report's
// state footprint — and therefore program traffic per step — must be
// strictly larger than the scale-free 6 B/param figure the accounting used
// to report.
func TestEnduranceQ8ScaleOverhead(t *testing.T) {
	cfg := testConfig(dnn.GPT2XL())
	cfg.Precision = optim.Q8State
	rep, err := RunEndurance(cfg, nand.TLC, 3)
	if err != nil {
		t.Fatal(err)
	}
	scaleFree := cfg.Model.Params * int64(cfg.Spec().MasterBytes+cfg.Spec().StateBytes)
	if rep.StateBytes <= scaleFree {
		t.Fatalf("Q8 StateBytes %d not above scale-free %d: per-block scale overhead lost",
			rep.StateBytes, scaleFree)
	}
	want := int64(float64(cfg.Model.Params) * (6 + 8.0/optim.QuantBlockSize))
	if rep.StateBytes != want {
		t.Fatalf("Q8 StateBytes %d, want %d (params × (6 + 8/256))", rep.StateBytes, want)
	}
	if rep.ProgramBytesPerStep <= float64(scaleFree) {
		t.Fatalf("Q8 ProgramBytesPerStep %.0f not above scale-free state %d",
			rep.ProgramBytesPerStep, scaleFree)
	}
}

func TestEnduranceDoesNotFit(t *testing.T) {
	// GPT-175B Adam state is 2.1 TB; a 0.7 TB SLC-mode device cannot hold it.
	cfg := testConfig(dnn.GPT175B())
	rep, err := RunEndurance(cfg, nand.SLC, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fits {
		t.Fatalf("175B state (%d B) reported as fitting %d B device", rep.StateBytes, rep.DeviceBytes)
	}
}

func TestEnduranceRejectsBadSteps(t *testing.T) {
	if _, err := RunEndurance(testConfig(dnn.GPT2XL()), nand.TLC, 1); err == nil {
		t.Fatal("steps=1 accepted")
	}
}

func TestMeasureUpdateWAFMoreOPLessWAF(t *testing.T) {
	// Shrinking over-provisioning must not reduce write amplification.
	low, err := measureUpdateWAF(nand.TLC, 0.07, 3)
	if err != nil {
		t.Fatal(err)
	}
	high, err := measureUpdateWAF(nand.TLC, 0.28, 3)
	if err != nil {
		t.Fatal(err)
	}
	if high > low+1e-9 {
		t.Fatalf("WAF(OP=28%%)=%v > WAF(OP=7%%)=%v", high, low)
	}
}
