package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestStreamOrderAdversarial submits jobs whose durations are inversely
// proportional to their index — under real parallelism the last job
// finishes first — and checks emission still follows submission order.
func TestStreamOrderAdversarial(t *testing.T) {
	const n = 16
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = func() (int, error) {
			//simlint:allow wallclock real sleeps exercise actual parallel execution
			time.Sleep(time.Duration(n-i) * time.Millisecond)
			return i * i, nil
		}
	}
	for _, workers := range []int{1, 2, 4, n, 2 * n} {
		var got []int
		Stream(workers, jobs, func(r Result[int]) { got = append(got, r.Index) })
		for i, idx := range got {
			if idx != i {
				t.Fatalf("workers=%d: emission %d has index %d, want %d", workers, i, idx, i)
			}
		}
		if len(got) != n {
			t.Fatalf("workers=%d: emitted %d results, want %d", workers, len(got), n)
		}
	}
}

// TestRunOrderAndValues checks Run returns indexed values in order.
func TestRunOrderAndValues(t *testing.T) {
	results := Map(4, []int{5, 3, 8, 1}, func(v int) (int, error) { return v * 10, nil })
	want := []int{50, 30, 80, 10}
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	for i, v := range Values(results) {
		if v != want[i] {
			t.Fatalf("result %d = %d, want %d", i, v, want[i])
		}
	}
}

// TestPanicCapture checks a panicking job becomes a per-job *PanicError
// while sibling jobs complete normally.
func TestPanicCapture(t *testing.T) {
	jobs := []Job[string]{
		func() (string, error) { return "ok0", nil },
		func() (string, error) { panic("boom") },
		func() (string, error) { return "ok2", nil },
	}
	for _, workers := range []int{1, 3} {
		rs := Run(workers, jobs)
		if rs[0].Err != nil || rs[0].Value != "ok0" {
			t.Fatalf("workers=%d: job 0 = (%q, %v)", workers, rs[0].Value, rs[0].Err)
		}
		if rs[2].Err != nil || rs[2].Value != "ok2" {
			t.Fatalf("workers=%d: job 2 = (%q, %v)", workers, rs[2].Value, rs[2].Err)
		}
		var pe *PanicError
		if !errors.As(rs[1].Err, &pe) {
			t.Fatalf("workers=%d: job 1 err = %v, want *PanicError", workers, rs[1].Err)
		}
		if pe.Value != "boom" {
			t.Fatalf("panic value = %v, want boom", pe.Value)
		}
		if !strings.Contains(string(pe.Stack), "runner") {
			t.Fatalf("panic stack missing frames: %q", pe.Stack)
		}
		if !strings.Contains(pe.Error(), "boom") {
			t.Fatalf("panic error text = %q", pe.Error())
		}
	}
}

// TestSequentialIdentical checks workers=1 produces exactly the results a
// plain loop would, including execution order (observed via a counter).
func TestSequentialIdentical(t *testing.T) {
	var order []int
	jobs := make([]Job[int], 8)
	for i := range jobs {
		i := i
		jobs[i] = func() (int, error) {
			order = append(order, i) // safe: workers=1 runs on this goroutine
			return i, nil
		}
	}
	rs := Run(1, jobs)
	for i, r := range rs {
		if r.Index != i || r.Value != i || r.Err != nil {
			t.Fatalf("result %d = %+v", i, r)
		}
		if order[i] != i {
			t.Fatalf("execution order %v not sequential", order)
		}
	}
}

// TestWorkersBound checks the pool never runs more than `workers` jobs at
// once.
func TestWorkersBound(t *testing.T) {
	const workers, n = 3, 24
	var inFlight, peak atomic.Int64
	jobs := make([]Job[int], n)
	for i := range jobs {
		jobs[i] = func() (int, error) {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			//simlint:allow wallclock real sleeps exercise actual parallel execution
			time.Sleep(2 * time.Millisecond)
			inFlight.Add(-1)
			return 0, nil
		}
	}
	Run(workers, jobs)
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

type countedResult struct{ events int64 }

func (c countedResult) EventCount() int64 { return c.events }

// TestEventMetricsAndSummary checks EventCounter values flow into Result
// and Summarize aggregates wall time, events and error counts.
func TestEventMetricsAndSummary(t *testing.T) {
	jobs := []Job[countedResult]{
		func() (countedResult, error) { return countedResult{100}, nil },
		func() (countedResult, error) { return countedResult{250}, nil },
		func() (countedResult, error) { return countedResult{999}, errors.New("bad point") },
		func() (countedResult, error) { panic("kaboom") },
	}
	rs := Run(2, jobs)
	if rs[0].Events != 100 || rs[1].Events != 250 {
		t.Fatalf("events = %d, %d; want 100, 250", rs[0].Events, rs[1].Events)
	}
	if rs[2].Events != 0 {
		t.Fatalf("failed job reported %d events, want 0", rs[2].Events)
	}
	s := Summarize(rs)
	if s.Jobs != 4 || s.Errors != 2 || s.Panics != 1 || s.Events != 350 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Busy < s.MaxWall {
		t.Fatalf("busy %v < max wall %v", s.Busy, s.MaxWall)
	}
	line := s.String()
	for _, want := range []string{"4 jobs", "350 sim events", "2 errors (1 panics)"} {
		if !strings.Contains(line, want) {
			t.Fatalf("summary string %q missing %q", line, want)
		}
	}
}

type auditedResult struct{ violations []string }

func (a auditedResult) InvariantViolations() []string { return a.violations }

// TestInvariantViolationsSurface checks InvariantReporter values flow into
// Result.Violations (successful jobs only) and Summarize counts them.
func TestInvariantViolationsSurface(t *testing.T) {
	jobs := []Job[auditedResult]{
		func() (auditedResult, error) { return auditedResult{nil}, nil },
		func() (auditedResult, error) { return auditedResult{[]string{"a: broke", "b: broke"}}, nil },
		func() (auditedResult, error) { return auditedResult{[]string{"ignored"}}, errors.New("bad point") },
	}
	rs := Run(2, jobs)
	if len(rs[0].Violations) != 0 || len(rs[1].Violations) != 2 {
		t.Fatalf("violations = %v, %v; want none and two", rs[0].Violations, rs[1].Violations)
	}
	if len(rs[2].Violations) != 0 {
		t.Fatalf("failed job surfaced violations %v, want none", rs[2].Violations)
	}
	s := Summarize(rs)
	if s.Violations != 2 {
		t.Fatalf("summary violations = %d, want 2", s.Violations)
	}
	if !strings.Contains(s.String(), "2 INVARIANT VIOLATIONS") {
		t.Fatalf("summary string %q missing violation count", s.String())
	}
	if clean := Summarize(rs[:1]); strings.Contains(clean.String(), "VIOLATIONS") {
		t.Fatalf("clean summary %q mentions violations", clean.String())
	}
}

// TestFirstErr checks error selection follows submission order.
func TestFirstErr(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	rs := []Result[int]{{Index: 0}, {Index: 1, Err: errA}, {Index: 2, Err: errB}}
	if err := FirstErr(rs); err != errA {
		t.Fatalf("FirstErr = %v, want %v", err, errA)
	}
	if err := FirstErr(rs[:1]); err != nil {
		t.Fatalf("FirstErr on clean run = %v", err)
	}
}

// TestWorkersNormalisation pins the <=0 → GOMAXPROCS convention.
func TestWorkersNormalisation(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers(<=0) must be at least 1")
	}
	if Workers(7) != 7 {
		t.Fatalf("Workers(7) = %d", Workers(7))
	}
}

// TestEmptyAndSingle covers the degenerate shapes.
func TestEmptyAndSingle(t *testing.T) {
	if rs := Run[int](4, nil); len(rs) != 0 {
		t.Fatalf("empty run returned %d results", len(rs))
	}
	rs := Run(4, []Job[string]{func() (string, error) { return "only", nil }})
	if len(rs) != 1 || rs[0].Value != "only" {
		t.Fatalf("single run = %+v", rs)
	}
}

func ExampleMap() {
	results := Map(2, []int{1, 2, 3}, func(v int) (string, error) {
		return fmt.Sprintf("point-%d", v), nil
	})
	for _, r := range results {
		fmt.Println(r.Value)
	}
	// Output:
	// point-1
	// point-2
	// point-3
}
