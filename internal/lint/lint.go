// Package lint is a minimal go/analysis-style static-analysis framework
// built on the standard library's go/ast and go/types. It exists because
// this repository vendors no third-party modules: the x/tools analysis
// machinery is re-derived here at the scale the simulator needs — typed
// packages, per-analyzer diagnostics, `//simlint:allow` suppression, and
// an analysistest-style harness (see the linttest subpackage).
//
// The four shipped analyzers live in internal/lint/checks; the
// cmd/simlint multichecker wires them over ./... as verify tier 3.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description, shown by `simlint -help`.
	Doc string
	// Run inspects one typechecked unit and reports findings via
	// pass.Report / pass.Reportf.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos token.Pos
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Category is the sub-check within the analyzer (e.g. the
	// nondeterminism analyzer reports wallclock, globalrand and maporder
	// categories). Allow directives match either the category or the
	// analyzer name.
	Category string
	Message  string
}

// A Pass carries one typechecked compilation unit through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the unit's syntax. For a package with in-package tests it
	// includes the _test.go files; external (package foo_test) files form
	// their own unit.
	Files []*ast.File
	// Pkg and Info are the go/types results for Files.
	Pkg  *types.Package
	Info *types.Info
	// ImportPath is the unit's import path ("repro/internal/core",
	// "repro/internal/core [xtest]" for external test units).
	ImportPath string

	diags *[]Diagnostic
}

// Report records a finding under the given category.
func (p *Pass) Report(pos token.Pos, category, message string) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Category: category,
		Message:  message,
	})
}

// Reportf is Report with formatting.
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...any) {
	p.Report(pos, category, fmt.Sprintf(format, args...))
}

// AllowDirective is the magic comment that suppresses findings:
//
//	//simlint:allow <name>[,<name>...] [reason...]
//
// where each <name> is an analyzer name, a category, or "all". The
// directive applies to diagnostics on its own line and on the line
// immediately below it — so it can sit at the end of the offending line
// or on its own comment line directly above it. A reason after the names
// is encouraged and ignored by the tool.
//
// A directive that suppresses nothing is itself reported (category
// unusedallow), so stale suppressions cannot accumulate as the code
// under them changes.
const AllowDirective = "simlint:allow"

// allowKey identifies one suppressed (file line, check name) pair.
type allowKey struct {
	file string
	line int
	name string
}

// allowDirective is one parsed name of one allow comment, tracked so
// directives that suppress nothing can be reported as stale.
type allowDirective struct {
	pos  token.Pos
	name string
	used bool
}

// allowSet indexes every allow directive in a unit.
type allowSet struct {
	index map[allowKey][]*allowDirective
	list  []*allowDirective
}

// collectAllows scans the unit's comments for allow directives.
func collectAllows(fset *token.FileSet, files []*ast.File) *allowSet {
	allows := &allowSet{index: map[allowKey][]*allowDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+AllowDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(strings.TrimSpace(text))
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					d := &allowDirective{pos: c.Pos(), name: name}
					allows.list = append(allows.list, d)
					for _, line := range []int{pos.Line, pos.Line + 1} {
						k := allowKey{pos.Filename, line, name}
						allows.index[k] = append(allows.index[k], d)
					}
				}
			}
		}
	}
	return allows
}

// suppressed reports whether d is covered by an allow directive, marking
// any covering directives as used.
func (a *allowSet) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	ok := false
	for _, name := range []string{d.Category, d.Analyzer, "all"} {
		for _, dir := range a.index[allowKey{pos.Filename, pos.Line, name}] {
			dir.used = true
			ok = true
		}
	}
	return ok
}

// unused returns a diagnostic for each directive that suppressed nothing:
// a stale allow hides future regressions at its line, so it must go.
func (a *allowSet) unused() []Diagnostic {
	var diags []Diagnostic
	for _, d := range a.list {
		if !d.used {
			diags = append(diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: "simlint",
				Category: "unusedallow",
				Message: fmt.Sprintf("//%s %s suppresses nothing here; remove the stale directive",
					AllowDirective, d.name),
			})
		}
	}
	return diags
}

// RunAnalyzers applies each analyzer to the unit and returns the surviving
// (non-suppressed) diagnostics in position order.
func RunAnalyzers(unit *Unit, analyzers ...*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       unit.Fset,
			Files:      unit.Files,
			Pkg:        unit.Pkg,
			Info:       unit.Info,
			ImportPath: unit.ImportPath,
			diags:      &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, unit.ImportPath, err)
		}
	}
	allows := collectAllows(unit.Fset, unit.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !allows.suppressed(unit.Fset, d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, allows.unused()...)
	sort.SliceStable(kept, func(i, j int) bool {
		pi, pj := unit.Fset.Position(kept[i].Pos), unit.Fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return kept, nil
}

// funcNameRE helps analyzers that exempt helper functions by name.
var funcNameRE = map[string]*regexp.Regexp{}

// MatchesFuncName reports whether name matches the cached pattern.
func MatchesFuncName(pattern, name string) bool {
	re, ok := funcNameRE[pattern]
	if !ok {
		re = regexp.MustCompile(pattern)
		funcNameRE[pattern] = re
	}
	return re.MatchString(name)
}
