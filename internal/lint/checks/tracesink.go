package checks

import (
	"go/ast"
	"strings"

	"repro/internal/lint"
)

// TraceSink flags fmt stream writes (fmt.Fprint*/Print*) in the trace
// recording and serialization packages. The Chrome trace file must be
// byte-identical across runs and worker-pool widths, so every byte it
// contains is produced by strconv appends through the sink in
// internal/tracing — an ad-hoc fmt.Fprintf of an event bypasses that
// sink, and %g/%v float formatting is exactly the kind of
// representation drift the golden trace test exists to catch.
// In-memory formatting (fmt.Sprintf for panic messages and String
// methods) stays legal: it never reaches a trace file.
//
// Category: tracesink.
var TraceSink = &lint.Analyzer{
	Name: "tracesink",
	Doc: "flags fmt.Fprint*/Print* stream writes in trace-producing packages; " +
		"trace bytes must go through internal/tracing's strconv-append sink",
	Run: runTraceSink,
}

func runTraceSink(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(pass.Info, call)
			if pkgPathOf(obj) != "fmt" || isMethod(obj) {
				return true
			}
			name := obj.Name()
			if strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print") {
				pass.Reportf(call.Pos(), "tracesink",
					"fmt.%s stream write in a trace-producing package; emit trace bytes through internal/tracing's append-based sink (or //simlint:allow tracesink for non-trace output)", name)
			}
			return true
		})
	}
	return nil
}
