package report

import (
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func fakeResults() []*experiments.Result {
	t := stats.NewTable("demo table", "a", "b")
	t.AddRow("x<y", 1.5)
	f := stats.NewFigure("demo fig", "x", "y")
	s := f.AddSeries("s1")
	s.Add(1, 2)
	s.Add(2, 3)
	return []*experiments.Result{
		{ID: "T1", Title: "config & <specials>", Tables: []*stats.Table{t}},
		{ID: "F1", Title: "latency", Figures: []*stats.Figure{f}},
	}
}

func TestHTMLStructure(t *testing.T) {
	out := HTML(fakeResults())
	for _, want := range []string{
		"<!DOCTYPE html>", "</html>",
		`<h2 id="T1">`, `<h2 id="F1">`,
		"<table>", "<svg", "demo table",
		`<a href="#T1">`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestHTMLEscapes(t *testing.T) {
	out := HTML(fakeResults())
	if strings.Contains(out, "x<y") {
		t.Fatal("cell content not escaped")
	}
	if !strings.Contains(out, "x&lt;y") {
		t.Fatal("escaped cell missing")
	}
	if !strings.Contains(out, "&lt;specials&gt;") {
		t.Fatal("title not escaped")
	}
}

func TestHTMLFromRealExperiment(t *testing.T) {
	res, err := experiments.Run("F12", experiments.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	out := HTML([]*experiments.Result{res})
	if !strings.Contains(out, "F12") || !strings.Contains(out, "lanes") {
		t.Fatal("real experiment not rendered")
	}
}
