package experiments

import (
	"fmt"

	"repro/internal/dnn"
	"repro/internal/odp"
	"repro/internal/optim"
	"repro/internal/stats"
	"repro/internal/units"
)

// runT1 regenerates the system-configuration table (paper analogue:
// "Simulation configuration").
func runT1(opts Options) (*Result, error) {
	cfg := baseConfig(opts, dnn.GPT13B())
	t := stats.NewTable("T1: system configuration", "component", "parameter", "value")

	n := cfg.SSD.Nand
	geo := cfg.SSD.Geometry()
	t.AddRow("NAND", "cell type", n.Cell.String())
	t.AddRow("NAND", "page size", fmt.Sprintf("%d KiB", units.Bytes(n.PageSize)/units.KiB))
	t.AddRow("NAND", "tR / page", n.ReadLatency.String())
	t.AddRow("NAND", "tPROG / page (wordline-amortised)", n.ProgramLatency.String())
	t.AddRow("NAND", "tBERS", n.EraseLatency.String())
	t.AddRow("NAND", "rated P/E cycles", n.PECycles)
	t.AddRow("SSD", "channels × dies × planes",
		fmt.Sprintf("%d × %d × %d = %d planes", cfg.SSD.Channels, cfg.SSD.DiesPerChannel,
			n.PlanesPerDie, geo.Planes()))
	t.AddRow("SSD", "channel bus", fmt.Sprintf("%d MB/s", n.BusMBps))
	t.AddRow("SSD", "over-provisioning", fmt.Sprintf("%.1f%%", cfg.SSD.OverProvision*100))
	t.AddRow("SSD", "internal read BW", fmt.Sprintf("%.1f GB/s", cfg.SSD.InternalReadMBps().GBps()))
	t.AddRow("SSD", "internal program BW", fmt.Sprintf("%.1f GB/s", cfg.SSD.InternalProgramMBps().GBps()))
	t.AddRow("ODP", "lanes × clock", fmt.Sprintf("%d × %d MHz", cfg.ODP.Lanes, cfg.ODP.ClockMHz))
	t.AddRow("ODP", "buffer", fmt.Sprintf("%d KiB", cfg.ODP.BufferKB))
	cost := odp.CostFor(cfg.ODP)
	t.AddRow("ODP", "area", fmt.Sprintf("%.3f mm² (%.2f%% of die)", cost.AreaMM2, cost.DieAreaPct))
	t.AddRow("Host link", "type", cfg.Link.Name)
	t.AddRow("Host link", "effective BW", fmt.Sprintf("%.2f GB/s per direction", cfg.Link.EffectiveGBps()))
	t.AddRow("GPU", "type", cfg.GPU.Name)
	t.AddRow("GPU", "peak / MFU", fmt.Sprintf("%.0f TFLOPS / %.2f", cfg.GPU.PeakTFLOPS, cfg.GPU.MFU))
	t.AddRow("GPU", "HBM", fmt.Sprintf("%.0f GB/s, %.0f GB", cfg.GPU.HBMGBps, cfg.GPU.MemoryGB))
	t.AddRow("Controller", "cores (CtrlISP)",
		fmt.Sprintf("%.0f GFLOPS, %.0f GB/s DRAM", cfg.CtrlCPU.GFLOPS, cfg.CtrlCPU.DRAMGBps))
	t.AddRow("Workload", "optimizer / precision", cfg.Optimizer.String()+" / "+cfg.Precision.String())
	t.AddRow("Workload", "sim window", fmt.Sprintf("%d units (scale %.0fx)", cfg.SimUnits(), cfg.ScaleFactor()))
	return &Result{Tables: []*stats.Table{t}}, nil
}

// runT2 regenerates the model-zoo table: per-model parameter counts and
// per-step byte footprints under the default Adam/Mixed16 regime.
func runT2(Options) (*Result, error) {
	spec := optim.SpecFor(optim.Adam, optim.Mixed16)
	t := stats.NewTable("T2: models and per-step footprints (Adam, mixed precision)",
		"model", "params", "state-GB", "grad-GB", "offload-traffic-GB",
		"instore-traffic-GB", "fits-A100-40G")
	for _, m := range dnn.Zoo() {
		state := float64(m.Params) * spec.ResidentBytes() / units.BytesPerGB
		grad := float64(m.Params) * float64(spec.GradBytes) / units.BytesPerGB
		offload := float64(m.Params) * spec.OffloadTrafficBytes() / units.BytesPerGB
		instore := float64(m.Params) * float64(spec.HostTrafficBytes()) / units.BytesPerGB
		// GPU-resident footprint: working weights + grads + full state.
		fits := float64(m.Params)*(spec.ResidentBytes()+float64(spec.GradBytes+spec.WeightOutBytes))*1.2 < 40e9
		t.AddRow(m.Name, dnn.FormatCount(m.Params), state, grad, offload, instore, fits)
	}
	return &Result{Tables: []*stats.Table{t}}, nil
}
